//===- tools/rdbt_fuzz.cpp - Standing differential-fuzz harness ------------===//
//
// Part of RuleDBT. See DESIGN.md for the project overview.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standing differential fuzzer (DESIGN.md §10): runs seed ranges of
/// random guest programs (src/fuzz/ProgramGen.h) through the reference
/// interpreter and every engine translator kind — including a persisted
/// rule:file corpus — on a BatchRunner worker pool, and diffs final
/// architectural state exactly. Any mismatch is shrunk to a minimized
/// reproducer (src/fuzz/Shrink.h) and reported with the seed and spec;
/// the exit code is non-zero on any mismatch or session error, so CI
/// soak jobs cannot silently pass.
///
///   rdbt_fuzz --seeds 0..500 --jobs 8 --corpus ref.rules --json
///   rdbt_fuzz --seed 137 --spec rule:scheduling    # reproduce one seed
///   rdbt_fuzz --plant-bug                          # harness self-test
///
/// --plant-bug deploys the reference corpus with a deliberately-unsound
/// clz rule and *inverts* the exit semantics: the run succeeds only if
/// the bug is caught and the reproducer shrinks to <= 8 instructions.
///
/// With --json (or RDBT_BENCH_JSON set) a BENCH_fuzz.json summary is
/// emitted: per-kind aggregate counters, seeds run, mismatch counts,
/// wall-clock execs/sec, and the rule-matcher micro-benchmark comparing
/// the linear, fine-indexed, and hot-reordered matchers at corpus scale.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "arm/Decoder.h"
#include "fuzz/Differential.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/Shrink.h"
#include "rules/RuleIo.h"
#include "vm/BatchRunner.h"
#include "vm/Vm.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace rdbt;

namespace {

struct Options {
  uint64_t SeedLo = 0, SeedHi = 100; ///< [lo, hi) seed window
  bool SingleSeed = false;
  std::vector<std::string> Specs; ///< engine kinds to diff (default: all)
  std::string ProfileName = "mixed";
  unsigned Jobs = 1;
  std::string CorpusFile;
  bool Json = false;
  bool PlantBug = false;
  bool List = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: rdbt_fuzz [--seeds A..B] [--seed N] [--spec KIND] "
      "[--profile P]\n"
      "                 [--jobs N] [--corpus F] [--json] [--plant-bug] "
      "[--list]\n");
  return 2;
}

/// The per-program seed schedule (kept from FuzzDifferentialTest).
uint64_t seedAt(uint64_t Index) { return 0xF0DD + Index * 7919; }

struct KindState {
  std::string Spec;
  bench::RunStats Sum;  ///< counters summed across seeds
  uint64_t Seeds = 0;
  uint64_t Mismatches = 0;
  uint64_t Errors = 0;
};

struct Mismatch {
  uint64_t Seed = 0;
  std::string Spec;
  std::string Diff;
};

/// Decodes the rendered image into the instruction stream the matcher
/// micro-benchmark and the hot-order warmup replay.
std::vector<arm::Inst> decodeProgram(const fuzz::GenProgram &Prog) {
  std::vector<arm::Inst> Insts;
  for (const uint32_t W : fuzz::render(Prog))
    Insts.push_back(arm::decode(W));
  return Insts;
}

/// Replays \p Insts through \p RS once, window-by-window, accumulating
/// \p Stats — the warmup pass whose per-rule hit counts drive
/// optimizeHotOrder before the corpus is shared with the worker pool.
void warmupMatch(const rules::RuleSet &RS, const std::vector<arm::Inst> &Insts,
                 rules::MatchStats &Stats) {
  for (size_t I = 0; I < Insts.size(); ++I) {
    const rules::Rule *R = nullptr;
    rules::Binding B;
    RS.match(Insts.data() + I, Insts.size() - I, &R, B, &Stats);
  }
}

//===----------------------------------------------------------------------===//
// Rule-matcher micro-benchmark: linear vs fine-indexed vs hot-reordered,
// at reference scale and at synthetic corpus scale (1k+/10k+ rules).
//===----------------------------------------------------------------------===//

/// Extends the reference set with exact-immediate single-opcode variants
/// ("learned specializations") until it holds \p Target rules. Each
/// variant registers in exactly one fine bucket, which is how a real
/// learned corpus spreads: the linear matcher degrades with the rule
/// count while the indexed matcher only sees its bucket.
rules::RuleSet buildSyntheticCorpus(size_t Target) {
  const rules::RuleSet Ref = rules::buildReferenceRuleSet();
  // Opcode -> host-op mapping, harvested from the reference classes.
  std::vector<rules::OpClassEntry> AluEntries;
  for (size_t I = 0; I < Ref.size(); ++I)
    for (const auto &Class : Ref.rule(I).Classes)
      for (const rules::OpClassEntry &CE : Class) {
        bool Known = false;
        for (const rules::OpClassEntry &Have : AluEntries)
          Known |= Have.Guest == CE.Guest;
        if (!Known)
          AluEntries.push_back(CE);
      }

  rules::RuleSet RS;
  for (size_t I = 0; I < Ref.size(); ++I)
    RS.add(Ref.rule(I));
  size_t Serial = 0;
  while (RS.size() < Target && !AluEntries.empty()) {
    const rules::OpClassEntry &CE = AluEntries[Serial % AluEntries.size()];
    rules::Rule R;
    R.Name = "syn_" + std::to_string(Serial);
    R.Classes = {{CE}};
    rules::RulePattern P;
    P.Shape = rules::PatShape::DpImm;
    P.SetFlags = (Serial & 1) != 0;
    P.Rd = 0;
    P.Rn = 1;
    P.ImmP = -1;
    P.ImmExact = static_cast<uint32_t>(Serial / AluEntries.size()) % 256;
    R.Guest = {P};
    rules::HostTemplateOp H;
    H.UseClassHostOp = true;
    H.SetFlagsFromGuest = true;
    H.Dst = 0;
    H.Src = 1;
    H.UseImm = true;
    H.ImmExact = P.ImmExact;
    R.Host = {H};
    R.Verified = true;
    RS.add(std::move(R));
    ++Serial;
  }
  return RS;
}

struct MatchBenchResult {
  double LinearPerSec = 0;
  double IndexedPerSec = 0;
  double HotPerSec = 0;
  bool Identical = true; ///< all three matchers agreed on every probe
};

MatchBenchResult runMatchBench(const rules::RuleSet &RS,
                               const std::vector<arm::Inst> &Insts,
                               unsigned Repeat) {
  using Matcher = size_t (rules::RuleSet::*)(const arm::Inst *, size_t,
                                             const rules::Rule **,
                                             rules::Binding &,
                                             rules::MatchStats *) const;
  // Hot-order a copy on a warmup pass; the original stays canonical.
  rules::RuleSet Hot;
  for (size_t I = 0; I < RS.size(); ++I)
    Hot.add(RS.rule(I));
  rules::MatchStats Warm;
  warmupMatch(Hot, Insts, Warm);
  Hot.optimizeHotOrder(Warm);

  MatchBenchResult Res;
  // Per-probe reference results from the linear matcher (rule name +
  // consumed count identify the selection across rule-set copies). The
  // full bit-level equivalence proof lives in RuleSetIndexTest; this
  // keeps the timed paths honest on the benched stream too.
  std::vector<std::pair<std::string, size_t>> Want;
  Want.reserve(Insts.size());
  for (size_t I = 0; I < Insts.size(); ++I) {
    const rules::Rule *R = nullptr;
    rules::Binding B;
    const size_t Len =
        RS.matchLinear(Insts.data() + I, Insts.size() - I, &R, B, nullptr);
    Want.emplace_back(R ? R->Name : "", Len);
  }
  const auto Time = [&](const rules::RuleSet &Set, Matcher M, bool Check) {
    const auto T0 = std::chrono::steady_clock::now();
    uint64_t Probes = 0;
    for (unsigned Rep = 0; Rep < Repeat; ++Rep)
      for (size_t I = 0; I < Insts.size(); ++I) {
        const rules::Rule *R = nullptr;
        rules::Binding B;
        const size_t Len =
            (Set.*M)(Insts.data() + I, Insts.size() - I, &R, B, nullptr);
        ++Probes;
        if (Check && Rep == 0 &&
            (Len != Want[I].second || (R ? R->Name : "") != Want[I].first))
          Res.Identical = false;
      }
    const double Secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    return Secs > 0 ? static_cast<double>(Probes) / Secs : 0.0;
  };
  Res.LinearPerSec = Time(RS, &rules::RuleSet::matchLinear, false);
  Res.IndexedPerSec = Time(RS, &rules::RuleSet::match, true);
  Res.HotPerSec = Time(Hot, &rules::RuleSet::match, true);
  return Res;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    const std::string A = Argv[I];
    const auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (A == "--seeds") {
      const char *V = Next();
      uint64_t Lo = 0, Hi = 0;
      if (!V || std::sscanf(V, "%llu..%llu", (unsigned long long *)&Lo,
                            (unsigned long long *)&Hi) != 2 ||
          Hi <= Lo)
        return usage();
      Opt.SeedLo = Lo;
      Opt.SeedHi = Hi;
    } else if (A == "--seed") {
      const char *V = Next();
      if (!V)
        return usage();
      Opt.SeedLo = std::strtoull(V, nullptr, 0);
      Opt.SeedHi = Opt.SeedLo + 1;
      Opt.SingleSeed = true;
    } else if (A == "--spec") {
      const char *V = Next();
      if (!V)
        return usage();
      Opt.Specs.push_back(V);
    } else if (A == "--profile") {
      const char *V = Next();
      if (!V)
        return usage();
      Opt.ProfileName = V;
    } else if (A == "--jobs") {
      const char *V = Next();
      if (!V)
        return usage();
      Opt.Jobs = static_cast<unsigned>(std::atoi(V));
      if (!Opt.Jobs)
        Opt.Jobs = vm::BatchRunner::hardwareJobs();
    } else if (A == "--corpus") {
      const char *V = Next();
      if (!V)
        return usage();
      Opt.CorpusFile = V;
    } else if (A == "--json") {
      Opt.Json = true;
    } else if (A == "--plant-bug") {
      Opt.PlantBug = true;
    } else if (A == "--list") {
      Opt.List = true;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", A.c_str());
      return usage();
    }
  }

  if (Opt.List) {
    std::printf("profiles:");
    for (const fuzz::Profile &P : fuzz::allProfiles())
      std::printf(" %s", P.Name);
    std::printf("\nkinds:");
    for (const std::string &K : vm::TranslatorRegistry::global().kinds()) {
      const auto *Info = vm::TranslatorRegistry::global().find(K);
      if (Info && Info->UsesEngine && !Info->TakesParam)
        std::printf(" %s", K.c_str());
    }
    std::printf(" rule:file=<path>\n");
    return 0;
  }

  const fuzz::Profile *Prof = fuzz::findProfile(Opt.ProfileName);
  if (!Prof) {
    std::fprintf(stderr, "unknown profile '%s'\n", Opt.ProfileName.c_str());
    return usage();
  }

  // --- Corpora ------------------------------------------------------------
  // One immutable RuleSet per corpus, shared read-only across every seed,
  // kind, and worker thread. --plant-bug swaps in the unsound clz rule.
  rules::RuleSet Shared = Opt.PlantBug ? fuzz::buildPlantedBugRuleSet()
                                       : rules::buildReferenceRuleSet();
  rules::RuleSet FileCorpus;
  if (!Opt.CorpusFile.empty()) {
    std::string Err;
    if (!rules::readRuleFile(Opt.CorpusFile, FileCorpus, &Err)) {
      std::fprintf(stderr, "cannot load corpus '%s': %s\n",
                   Opt.CorpusFile.c_str(), Err.c_str());
      return 2;
    }
  }

  // Warm the shared corpus and reorder hot rules first — the setup-time
  // optimizeHotOrder pass every long-lived deployment would run. Sound by
  // construction (see RuleSet.h), verified by RuleSetIndexTest.
  {
    rules::MatchStats Warm;
    const std::vector<arm::Inst> WarmInsts =
        decodeProgram(fuzz::generate(seedAt(Opt.SeedLo), *Prof));
    warmupMatch(Shared, WarmInsts, Warm);
    Shared.optimizeHotOrder(Warm);
    if (!Opt.CorpusFile.empty()) {
      rules::MatchStats FileWarm;
      warmupMatch(FileCorpus, WarmInsts, FileWarm);
      FileCorpus.optimizeHotOrder(FileWarm);
    }
  }

  // --- Kind list ----------------------------------------------------------
  std::vector<std::string> Specs = Opt.Specs;
  if (Specs.empty()) {
    if (Opt.PlantBug) {
      Specs.push_back("rule:scheduling");
    } else {
      for (const std::string &K : vm::TranslatorRegistry::global().kinds()) {
        const auto *Info = vm::TranslatorRegistry::global().find(K);
        if (Info && Info->UsesEngine && !Info->TakesParam)
          Specs.push_back(K);
      }
      if (!Opt.CorpusFile.empty())
        Specs.push_back("rule:file=" + Opt.CorpusFile);
    }
  }
  const auto RulesFor = [&](const std::string &Spec) -> const rules::RuleSet * {
    if (Spec.rfind("rule:file=", 0) == 0 && !Opt.CorpusFile.empty())
      return &FileCorpus;
    return &Shared;
  };

  std::vector<KindState> Kinds;
  for (const std::string &S : Specs)
    Kinds.push_back({S, {}, 0, 0, 0});

  if (Opt.SingleSeed) {
    const fuzz::GenProgram P = fuzz::generate(seedAt(Opt.SeedLo), *Prof);
    std::printf("seed %llu (%s, %zu ops):\n",
                (unsigned long long)Opt.SeedLo, Prof->Name, P.Ops.size());
    for (const fuzz::GenOp &Op : P.Ops)
      std::printf("    %s\n", fuzz::describeOp(Op).c_str());
  }

  // --- Fuzz loop ----------------------------------------------------------
  const vm::BatchRunner Runner(Opt.Jobs);
  std::vector<Mismatch> Mismatches;
  std::vector<std::string> Errors;
  uint64_t ProgramsRun = 0;
  const auto FuzzT0 = std::chrono::steady_clock::now();

  constexpr uint64_t Wave = 32;
  for (uint64_t Lo = Opt.SeedLo; Lo < Opt.SeedHi; Lo += Wave) {
    const uint64_t Hi = std::min(Opt.SeedHi, Lo + Wave);
    std::vector<fuzz::GenProgram> Progs;
    std::vector<vm::VmConfig> Configs;
    for (uint64_t S = Lo; S < Hi; ++S) {
      Progs.push_back(fuzz::generate(seedAt(S), *Prof));
      const std::vector<uint32_t> Words = fuzz::render(Progs.back());
      Configs.push_back(
          fuzz::flatConfig(Words, "native", nullptr, fuzz::NativeBudget));
      for (const KindState &K : Kinds)
        Configs.push_back(fuzz::flatConfig(Words, K.Spec, RulesFor(K.Spec),
                                           fuzz::EngineBudget));
    }
    const std::vector<vm::RunReport> Reports = Runner.run(Configs);

    const size_t Stride = 1 + Kinds.size();
    for (uint64_t S = Lo; S < Hi; ++S) {
      const size_t Base = static_cast<size_t>(S - Lo) * Stride;
      const vm::RunReport &RefRep = Reports[Base];
      const fuzz::FinalState Ref = fuzz::finalStateOf(RefRep);
      ProgramsRun += Stride;
      if (!RefRep.Error.empty() || !Ref.Shutdown) {
        Errors.push_back("seed " + std::to_string(S) + " native: " +
                         (RefRep.Error.empty() ? "did not terminate"
                                               : RefRep.Error));
        continue;
      }
      for (size_t K = 0; K < Kinds.size(); ++K) {
        const vm::RunReport &Rep = Reports[Base + 1 + K];
        KindState &KS = Kinds[K];
        ++KS.Seeds;
        if (!Rep.Error.empty()) {
          ++KS.Errors;
          Errors.push_back("seed " + std::to_string(S) + " " + KS.Spec +
                           ": " + Rep.Error);
          continue;
        }
        // Aggregate counters for the BENCH_fuzz.json per-kind row.
        const bench::RunStats St = bench::fromReport(Rep);
        KS.Sum.Wall += St.Wall;
        KS.Sum.GuestInstrs += St.GuestInstrs;
        KS.Sum.HostInstrs += St.HostInstrs;
        KS.Sum.RuleCoveredInstrs += St.RuleCoveredInstrs;
        KS.Sum.FallbackInstrs += St.FallbackInstrs;
        KS.Sum.RuleMatchAttempts += St.RuleMatchAttempts;
        KS.Sum.RuleMatchHits += St.RuleMatchHits;
        KS.Sum.Ok = true;
        const fuzz::FinalState Got = fuzz::finalStateOf(Rep);
        if (!fuzz::statesAgree(Ref, Got)) {
          ++KS.Mismatches;
          Mismatches.push_back(
              {S, KS.Spec, fuzz::diffStates(Ref, Got)});
        }
      }
    }
  }
  const double FuzzSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - FuzzT0)
          .count();

  // --- Report -------------------------------------------------------------
  const uint64_t SeedCount = Opt.SeedHi - Opt.SeedLo;
  std::printf("fuzz: %llu seeds x %zu kinds, profile %s, jobs %u\n",
              (unsigned long long)SeedCount, Kinds.size(), Prof->Name,
              Opt.Jobs);
  for (const KindState &K : Kinds)
    std::printf("  %-24s seeds %llu  mismatches %llu  errors %llu\n",
                K.Spec.c_str(), (unsigned long long)K.Seeds,
                (unsigned long long)K.Mismatches,
                (unsigned long long)K.Errors);

  for (const std::string &E : Errors)
    std::printf("ERROR: %s\n", E.c_str());

  // Shrink the first mismatch to a minimized reproducer.
  size_t MinimizedOps = 0;
  if (!Mismatches.empty()) {
    for (const Mismatch &M : Mismatches)
      std::printf("MISMATCH: seed %llu spec %s:%s\n",
                  (unsigned long long)M.Seed, M.Spec.c_str(),
                  M.Diff.c_str());
    const Mismatch &First = Mismatches.front();
    const fuzz::GenProgram Prog = fuzz::generate(seedAt(First.Seed), *Prof);
    const rules::RuleSet *KindRules = RulesFor(First.Spec);
    const fuzz::Oracle StillFails =
        [&](const std::vector<fuzz::GenOp> &Ops) {
          const std::vector<uint32_t> Words = fuzz::render(Prog, Ops);
          vm::Vm Ref(
              fuzz::flatConfig(Words, "native", nullptr, fuzz::NativeBudget));
          const fuzz::FinalState A = fuzz::finalStateOf(Ref.run());
          if (!A.Shutdown)
            return false;
          vm::Vm Sut(fuzz::flatConfig(Words, First.Spec, KindRules,
                                      fuzz::EngineBudget));
          return !fuzz::statesAgree(A, fuzz::finalStateOf(Sut.run()));
        };
    const fuzz::ShrinkResult Min = fuzz::shrink(Prog.Ops, StillFails);
    MinimizedOps = fuzz::renderedInstrCount(Min.Ops);
    std::printf("reproducer: seed %llu spec %s shrunk %zu -> %zu "
                "instructions (%u oracle runs)\n",
                (unsigned long long)First.Seed, First.Spec.c_str(),
                fuzz::renderedInstrCount(Prog.Ops), MinimizedOps,
                Min.OracleCalls);
    for (const fuzz::GenOp &Op : Min.Ops)
      std::printf("    %s\n", fuzz::describeOp(Op).c_str());
    std::printf("reproduce with: rdbt_fuzz --seed %llu --spec %s "
                "--profile %s%s%s\n",
                (unsigned long long)First.Seed, First.Spec.c_str(),
                Prof->Name,
                Opt.CorpusFile.empty() ? "" : " --corpus ",
                Opt.CorpusFile.c_str());
  }

  // --- Matcher micro-benchmark + BENCH_fuzz.json --------------------------
  if (Opt.Json)
    setenv("RDBT_BENCH_JSON", "1", 0);
  if (std::getenv("RDBT_BENCH_JSON")) {
    std::vector<arm::Inst> Stream;
    for (uint64_t S = Opt.SeedLo; S < Opt.SeedLo + 4; ++S) {
      const std::vector<arm::Inst> P = decodeProgram(
          fuzz::generate(seedAt(S), *fuzz::findProfile("corpus")));
      Stream.insert(Stream.end(), P.begin(), P.end());
    }
    bool BenchIdentical = true;
    for (const size_t Scale : {size_t(0), size_t(1000), size_t(10000)}) {
      const rules::RuleSet RS =
          Scale ? buildSyntheticCorpus(Scale) : rules::buildReferenceRuleSet();
      const MatchBenchResult B =
          runMatchBench(RS, Stream, Scale >= 10000 ? 2 : 10);
      BenchIdentical &= B.Identical;
      const std::string Point = std::to_string(RS.size()) + "_rules";
      bench::recordMetric("match_linear_per_sec", Point, B.LinearPerSec);
      bench::recordMetric("match_indexed_per_sec", Point, B.IndexedPerSec);
      bench::recordMetric("match_hot_per_sec", Point, B.HotPerSec);
      std::printf("match_bench %-12s linear %.0f/s indexed %.0f/s hot "
                  "%.0f/s%s\n",
                  Point.c_str(), B.LinearPerSec, B.IndexedPerSec,
                  B.HotPerSec, B.Identical ? "" : " [DIVERGED]");
    }
    if (!BenchIdentical)
      Errors.push_back("match_bench: matcher paths diverged");

    for (const KindState &K : Kinds) {
      bench::JsonRecorder::get().Runs.push_back(
          {"fuzz/" + Opt.ProfileName, K.Spec, K.Sum});
      bench::recordMetric("fuzz_seeds", K.Spec,
                          static_cast<double>(K.Seeds));
      bench::recordMetric("fuzz_mismatches", K.Spec,
                          static_cast<double>(K.Mismatches));
    }
    bench::recordMetric("fuzz_execs_per_sec", "all_kinds",
                        FuzzSecs > 0 ? ProgramsRun / FuzzSecs : 0);
    bench::recordMetric("fuzz_mismatches", "total",
                        static_cast<double>(Mismatches.size()));
    bench::writeBenchJson("fuzz");
  }

  // --- Exit ---------------------------------------------------------------
  if (Opt.PlantBug) {
    // Self-test semantics: the planted bug must be caught AND shrink tight.
    if (Mismatches.empty()) {
      std::printf("plant-bug: NOT CAUGHT\n");
      return 1;
    }
    if (MinimizedOps > 8) {
      std::printf("plant-bug: caught but reproducer has %zu instructions "
                  "(> 8)\n",
                  MinimizedOps);
      return 1;
    }
    std::printf("plant-bug: caught and shrunk to %zu instructions\n",
                MinimizedOps);
    return 0;
  }
  if (!Mismatches.empty() || !Errors.empty())
    return 1;
  std::printf("all seeds agree across %zu kinds\n", Kinds.size());
  return 0;
}
