//===- tools/rdbt_serve.cpp - Snapshot-forking session server ---------------===//
//
// Part of RuleDBT. The session-serving harness over vm::Snapshot
// (DESIGN.md §11): for each spec it boots ONE master image to the boot
// mark, warms it with --warm-items work items so the request path's
// translations are in the code cache, captures a snapshot — guest RAM,
// device state, the warmed code cache, the loaded rule corpus — and
// then drains N work items as copy-on-write forks of that snapshot
// through vm/BatchRunner. This is the serving pattern the snapshot
// subsystem exists for: pay image construction, boot, corpus loading,
// and hot-path translation once, then stamp out request sessions that
// share all of it read-only.
//
//   rdbt_serve [--spec S]... [--sessions N] [--jobs J] [--corpus F]
//              [--item-cycles W] [--warm-items K] [--min-speedup X]
//              [--cache-dir D] [--trace-dir D] [--no-fresh] [--json]
//
// --trace-dir D arms the observability sink (src/obs/) on every forked
// session, writing one Chrome trace-event timeline per fork to
// D/serve-spec<i>-fork<j>.trace.json. The sink never crosses the
// snapshot, so each fork's timeline is its own; the bitwise
// fork-vs-fresh verification is unaffected (tracing reads only host
// wall time, never simulated state). --json additionally reports the
// full fork-vs-fresh session-latency distributions as log2 histograms.
//
// --cache-dir D composes the persistent translation cache
// (dbt/CodeCacheIo.h) with snapshot forking: the master boots against
// the cache file in D (near-zero translations on a warm serve — the
// master cache line and master_* JSON fields show it) and saves on
// exit; forks inherit the master's in-memory store; fresh-boot twins
// load the same file but never save, so the file stays fixed for the
// whole drain and the bitwise fork-vs-fresh verification still holds.
//
// A work item is a fixed wall-budget slice of guest execution
// (--item-cycles, default 150000) against the booted image — the
// serving analogue of one request. Each forked session constructs from
// the snapshot and runs exactly one item; its fresh-boot twin pays the
// whole path a snapshotless server would — Vm construction (corpus
// load, image build), boot to the mark, replay of the warm run, then
// the same item. The twin replays the master's exact run-slice sequence
// (wall budgets are enforced at TB boundaries, so the stop point of a
// budgeted run depends on its start), which lands both at the identical
// guest cycle: every forked session's final architectural state,
// execution counters, and console are verified bitwise against its
// twin, and the speedup is only reported if forking is observationally
// free.
// --item-cycles 0 switches to whole-workload sessions (boot-to-shutdown
// both sides).
//
// For every spec it reports sessions/sec and p50/p99 session latency
// (construction + execution) for both drains plus the resulting
// speedup. --min-speedup X turns the measured speedup into an exit-code
// gate (CI's serve-smoke step). --json writes BENCH_serve.json
// (RDBT_BENCH_JSON directory convention).
//
// Defaults: one spec "rule:scheduling/libquantum" (plus
// "rule:file=<corpus>/libquantum" when a corpus resolves), 64 sessions,
// all cores, one warm item.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "vm/BatchRunner.h"
#include "vm/Snapshot.h"
#include "vm/Vm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace rdbt;

namespace {

uint64_t wallNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Latency distribution of one drain: per-session Time.totalNs().
struct Drain {
  uint64_t WallNs = 0;    ///< whole-batch wall time
  uint64_t P50Ns = 0;
  uint64_t P99Ns = 0;
  double SessionsPerSec = 0;
  /// Full session-latency distribution (log2-bucketed, obs/Metrics.h) —
  /// the p50/p99 pair above collapses the fork-vs-fresh story to two
  /// points; the histogram shows the whole shape in BENCH_serve.json.
  obs::Histogram LatencyHist;
};

Drain summarize(const std::vector<vm::RunReport> &Reports, uint64_t WallNs) {
  Drain D;
  D.WallNs = WallNs;
  std::vector<uint64_t> Lat;
  Lat.reserve(Reports.size());
  for (const vm::RunReport &R : Reports) {
    Lat.push_back(R.Time.totalNs());
    D.LatencyHist.record(R.Time.totalNs());
  }
  std::sort(Lat.begin(), Lat.end());
  if (!Lat.empty()) {
    D.P50Ns = Lat[Lat.size() / 2];
    D.P99Ns = Lat[std::min(Lat.size() - 1, (Lat.size() * 99) / 100)];
  }
  if (WallNs)
    D.SessionsPerSec = static_cast<double>(Reports.size()) * 1e9 /
                       static_cast<double>(WallNs);
  return D;
}

/// Bitwise forked-vs-fresh comparison: exact counters, final
/// architectural state, console, engine stats, and the cache counters —
/// minus the two fork-provenance diagnostics (AdoptedTbs counts blocks
/// inherited from the snapshot, CowBlockCopies the chain patches that
/// privatized one; both are 0 in a fresh run by construction).
bool identicalToFresh(const vm::RunReport &F, const vm::RunReport &R,
                      std::string *Why) {
  const auto Fail = [&](const char *What) {
    if (Why)
      *Why = What;
    return false;
  };
  if (std::memcmp(&F.Counters, &R.Counters, sizeof(F.Counters)) != 0)
    return Fail("exec counters");
  // Field-wise (not memcmp): FinalArchState has tail padding.
  for (int I = 0; I < 16; ++I)
    if (F.Final.Regs[I] != R.Final.Regs[I])
      return Fail("final registers");
  if (F.Final.Nzcv != R.Final.Nzcv ||
      F.Final.ShutdownRequested != R.Final.ShutdownRequested)
    return Fail("final architectural state");
  if (F.Console != R.Console)
    return Fail("console output");
  if (std::memcmp(&F.Engine, &R.Engine, sizeof(F.Engine)) != 0)
    return Fail("engine stats");
  dbt::CacheStats A = F.Cache, B = R.Cache;
  A.AdoptedTbs = B.AdoptedTbs = 0;
  A.CowBlockCopies = B.CowBlockCopies = 0;
  if (std::memcmp(&A, &B, sizeof(A)) != 0)
    return Fail("cache stats");
  if (F.RuleCoveredInstrs != R.RuleCoveredInstrs ||
      F.FallbackInstrs != R.FallbackInstrs ||
      F.RuleMatchAttempts != R.RuleMatchAttempts ||
      F.RuleMatchHits != R.RuleMatchHits)
    return Fail("rule-translator counters");
  if (F.Ok != R.Ok || F.Stop != R.Stop)
    return Fail("stop reason");
  return true;
}

struct SpecServe {
  std::string Spec;
  uint64_t MasterPrepNs = 0;   ///< master construct + boot + warm time
  uint64_t AdoptedTbs = 0;     ///< warm TBs every fork inherits
  double NewTranslationsPerSession = 0; ///< post-capture code, paid per fork
  // Master-boot persistent-cache provenance (--cache-dir): on a warm
  // serve the master seeds its code cache from the saved file instead of
  // translating, which is exactly the drop MasterPrepNs shows.
  uint64_t MasterTranslations = 0;
  uint64_t MasterCacheFileHits = 0;
  uint64_t MasterCacheFileMisses = 0;
  uint64_t MasterLoadedTbs = 0;
  Drain Forked, Fresh;
  double Speedup = 0;
  bool Verified = false;
  bench::RunStats Session; ///< one forked session's counters + timing
};

/// The fresh-boot control drain: each session pays everything a
/// snapshotless server would pay per item — full Vm construction, boot
/// to the mark, replay of the warm run, then the item itself
/// (ItemCycles 0 = whole-workload session). The replay repeats the
/// master's exact run-slice sequence because budgeted runs stop at the
/// first TB boundary past their deadline: only identical slicing lands
/// the twin on the fork's exact guest cycle for the bitwise check.
/// BatchRunner cannot express the boot-then-budgeted-run sequence, so
/// this uses the same worker-pool shape (atomic index, Jobs threads)
/// for a like-for-like wall-time comparison.
/// With --cache-dir the twins run load-only (persistentCacheSaveOnExit
/// off): a twin that saved at destruction would rewrite the cache file
/// mid-drain, and later twins would boot from a file the master never
/// observed — diverging the bitwise fork-vs-fresh comparison.
std::vector<vm::RunReport> freshDrain(const vm::VmConfig &Cfg,
                                      unsigned Sessions, unsigned Jobs,
                                      uint64_t WarmCycles,
                                      uint64_t ItemCycles) {
  std::vector<vm::RunReport> Out(Sessions);
  std::atomic<unsigned> Next{0};
  const auto Work = [&]() {
    for (unsigned I; (I = Next.fetch_add(1)) < Sessions;) {
      vm::Vm V(Cfg);
      if (ItemCycles) {
        V.runToBootMark();
        if (WarmCycles)
          V.run(WarmCycles);
        Out[I] = V.run(ItemCycles);
      } else {
        Out[I] = V.run();
      }
    }
  };
  if (Jobs <= 1) {
    Work();
    return Out;
  }
  std::vector<std::thread> Pool;
  for (unsigned J = 0; J < Jobs; ++J)
    Pool.emplace_back(Work);
  for (std::thread &T : Pool)
    T.join();
  return Out;
}

/// Serves one spec: boot, warm, capture, forked drain, fresh drain,
/// verify. Returns false on any failure (boot, session error,
/// divergence).
bool serveSpec(const std::string &Spec, unsigned Sessions, unsigned Jobs,
               uint64_t ItemCycles, unsigned WarmItems, bool RunFresh,
               const std::string &CacheDir, const std::string &TraceDir,
               SpecServe &Out, size_t SpecIdx) {
  Out.Spec = Spec;
  std::string Err;
  vm::VmConfig Cfg = vm::VmConfig::fromSpec(Spec, &Err);
  if (!Err.empty()) {
    std::fprintf(stderr, "%s: %s\n", Spec.c_str(), Err.c_str());
    return false;
  }
  if (!CacheDir.empty())
    Cfg.persistentCache(CacheDir);
  const uint64_t WarmCycles = ItemCycles * WarmItems;

  // Boot the master once, warm the request path, freeze it there.
  vm::Vm Master(Cfg);
  if (!Master.valid()) {
    std::fprintf(stderr, "%s: %s\n", Spec.c_str(), Master.error().c_str());
    return false;
  }
  vm::RunReport PrepR = Master.runToBootMark();
  if (PrepR.Error.empty() && WarmCycles)
    PrepR = Master.run(WarmCycles);
  if (!PrepR.Error.empty()) {
    std::fprintf(stderr, "%s: master prep failed: %s\n", Spec.c_str(),
                 PrepR.Error.c_str());
    return false;
  }
  const vm::Snapshot Snap = Master.capture();
  Out.MasterPrepNs = PrepR.Time.totalNs();
  Out.AdoptedTbs = Snap.warmTbs();
  Out.MasterTranslations = PrepR.Engine.Translations;
  Out.MasterCacheFileHits = PrepR.Cache.CacheFileHits;
  Out.MasterCacheFileMisses = PrepR.Cache.CacheFileMisses;
  Out.MasterLoadedTbs = PrepR.Cache.LoadedTbs;

  // Drain the work items as copy-on-write forks of the one snapshot.
  // In item mode each fork's wall budget is exactly one item.
  vm::VmConfig ForkCfg = vm::VmConfig(Cfg).snapshot(&Snap);
  if (ItemCycles)
    ForkCfg.wallBudget(ItemCycles);
  // --trace-dir: one timeline per fork. The sink never crosses the
  // snapshot (capture() scrubs it), so each fork opts in at its own
  // path here; counters stay bitwise identical to the untraced drain.
  std::vector<vm::VmConfig> ForkCfgs(Sessions, ForkCfg);
  if (!TraceDir.empty())
    for (unsigned I = 0; I < Sessions; ++I)
      ForkCfgs[I].trace(TraceDir + "/serve-spec" + std::to_string(SpecIdx) +
                        "-fork" + std::to_string(I) + ".trace.json");
  const uint64_t T0 = wallNs();
  const std::vector<vm::RunReport> Forked =
      vm::BatchRunner(Jobs).run(ForkCfgs);
  Out.Forked = summarize(Forked, wallNs() - T0);

  for (const vm::RunReport &R : Forked) {
    // Budgeted items legitimately stop at the wall limit; whole-workload
    // sessions must power off cleanly. Errors always fail the spec.
    const bool Clean = R.Error.empty() &&
                       (ItemCycles ? (R.Stop == dbt::StopReason::WallLimit ||
                                      R.Ok)
                                   : R.Ok);
    if (!Clean) {
      std::fprintf(stderr, "%s: forked session stopped with '%s'%s%s\n",
                   Spec.c_str(), R.stopName(), R.Error.empty() ? "" : ": ",
                   R.Error.c_str());
      return false;
    }
  }

  // Translation a fork had to do itself (code first reached after the
  // capture point); everything before it rides the adopted cache. With a
  // warm item captured this is the "retranslation ~= 0" story: the
  // request path is already in the shared cache.
  double NewXl = 0;
  for (const vm::RunReport &R : Forked)
    NewXl += static_cast<double>(R.Engine.Translations -
                                 PrepR.Engine.Translations);
  Out.NewTranslationsPerSession = Sessions ? NewXl / Sessions : 0;
  const auto *Info = vm::TranslatorRegistry::global().find(Cfg.translator());
  Out.Session =
      bench::fromReport(Forked.front(), Info && Info->UsesEngine);

  if (!RunFresh) {
    Out.Verified = false;
    return true;
  }

  // The fresh-boot control: same N items, full construction + boot +
  // warm replay each. Load-only against the cache dir (see freshDrain).
  vm::VmConfig FreshCfg = Cfg;
  FreshCfg.persistentCacheSaveOnExit(false);
  const uint64_t T1 = wallNs();
  const std::vector<vm::RunReport> Fresh =
      freshDrain(FreshCfg, Sessions, Jobs, WarmCycles, ItemCycles);
  Out.Fresh = summarize(Fresh, wallNs() - T1);
  if (Out.Forked.WallNs)
    Out.Speedup = static_cast<double>(Out.Fresh.WallNs) /
                  static_cast<double>(Out.Forked.WallNs);

  // Bitwise verification: every forked session against its fresh twin.
  std::string Why;
  for (size_t I = 0; I < Forked.size(); ++I)
    if (!identicalToFresh(Forked[I], Fresh[I], &Why)) {
      std::fprintf(stderr,
                   "%s: forked session %zu diverged from its fresh twin "
                   "(%s)\n", Spec.c_str(), I, Why.c_str());
      return false;
    }
  Out.Verified = true;
  return true;
}

void printServe(const SpecServe &S, unsigned Sessions) {
  std::printf("%s\n", S.Spec.c_str());
  std::printf("  master prep     %10.3f ms   adopted TBs %llu, new "
              "translations/fork %.1f\n",
              S.MasterPrepNs / 1e6,
              static_cast<unsigned long long>(S.AdoptedTbs),
              S.NewTranslationsPerSession);
  if (S.MasterCacheFileHits || S.MasterCacheFileMisses || S.MasterLoadedTbs)
    std::printf("  master cache    hits %llu  misses %llu  loaded TBs %llu  "
                "translations %llu\n",
                static_cast<unsigned long long>(S.MasterCacheFileHits),
                static_cast<unsigned long long>(S.MasterCacheFileMisses),
                static_cast<unsigned long long>(S.MasterLoadedTbs),
                static_cast<unsigned long long>(S.MasterTranslations));
  std::printf("  forked  (%4u)  %10.1f sessions/sec   p50 %8.3f ms   "
              "p99 %8.3f ms\n",
              Sessions, S.Forked.SessionsPerSec, S.Forked.P50Ns / 1e6,
              S.Forked.P99Ns / 1e6);
  if (S.Fresh.WallNs) {
    std::printf("  fresh   (%4u)  %10.1f sessions/sec   p50 %8.3f ms   "
                "p99 %8.3f ms\n",
                Sessions, S.Fresh.SessionsPerSec, S.Fresh.P50Ns / 1e6,
                S.Fresh.P99Ns / 1e6);
    std::printf("  speedup %.2fx; forked finals %s\n", S.Speedup,
                S.Verified ? "bitwise-identical to fresh twins"
                           : "UNVERIFIED");
  }
}

bool writeServeJson(const std::vector<SpecServe> &Serves, unsigned Sessions,
                    unsigned Jobs, uint64_t ItemCycles, unsigned WarmItems) {
  const char *Env = std::getenv("RDBT_BENCH_JSON");
  const std::string Dir =
      (!Env || *Env == '\0' || std::string(Env) == "1") ? "." : Env;
  const std::string Path = Dir + "/BENCH_serve.json";
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  OS << "{\n  \"bench\": \"serve\",\n  \"sessions\": " << Sessions
     << ",\n  \"jobs\": " << Jobs << ",\n  \"item_cycles\": " << ItemCycles
     << ",\n  \"warm_items\": " << WarmItems << ",\n  \"specs\": [";
  for (size_t I = 0; I < Serves.size(); ++I) {
    const SpecServe &S = Serves[I];
    OS << (I ? ",\n" : "\n") << "    {\"spec\": \""
       << bench::jsonEscape(S.Spec) << "\", \"master_prep_ns\": "
       << S.MasterPrepNs << ", \"adopted_tbs\": " << S.AdoptedTbs
       << ", \"new_translations_per_session\": "
       << S.NewTranslationsPerSession
       << ", \"master_translations\": " << S.MasterTranslations
       << ", \"master_cache_file_hits\": " << S.MasterCacheFileHits
       << ", \"master_cache_file_misses\": " << S.MasterCacheFileMisses
       << ", \"master_loaded_tbs\": " << S.MasterLoadedTbs
       << ", \"verified_identical\": " << (S.Verified ? "true" : "false")
       << ", \"speedup\": " << S.Speedup
       << ",\n     \"forked\": {\"wall_ns\": " << S.Forked.WallNs
       << ", \"sessions_per_sec\": " << S.Forked.SessionsPerSec
       << ", \"p50_ns\": " << S.Forked.P50Ns
       << ", \"p99_ns\": " << S.Forked.P99Ns << ", \"latency_hist\": ";
    bench::writeHistogramJson(OS, S.Forked.LatencyHist);
    OS << "}"
       << ",\n     \"fresh\": {\"wall_ns\": " << S.Fresh.WallNs
       << ", \"sessions_per_sec\": " << S.Fresh.SessionsPerSec
       << ", \"p50_ns\": " << S.Fresh.P50Ns
       << ", \"p99_ns\": " << S.Fresh.P99Ns << ", \"latency_hist\": ";
    bench::writeHistogramJson(OS, S.Fresh.LatencyHist);
    OS << "}"
       << ",\n     \"session\": {";
    bench::writeRunStatsFields(OS, S.Session, /*WithTiming=*/true);
    OS << "}}";
  }
  OS << "\n  ]\n}\n";
  std::printf("\nwrote %s\n", Path.c_str());
  return true;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Specs;
  unsigned Sessions = 64;
  unsigned Jobs = vm::BatchRunner::hardwareJobs();
  const char *Corpus = nullptr;
  uint64_t ItemCycles = 150000;
  unsigned WarmItems = 1;
  double MinSpeedup = 0;
  bool RunFresh = true;
  bool Json = false;
  std::string CacheDir;
  std::string TraceDir;

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--spec") == 0 && I + 1 < argc) {
      Specs.push_back(argv[++I]);
    } else if (std::strcmp(argv[I], "--sessions") == 0 && I + 1 < argc) {
      Sessions = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (std::strcmp(argv[I], "--jobs") == 0 && I + 1 < argc) {
      const int N = std::atoi(argv[++I]);
      Jobs = N > 0 ? static_cast<unsigned>(N)
                   : vm::BatchRunner::hardwareJobs();
    } else if (std::strcmp(argv[I], "--corpus") == 0 && I + 1 < argc) {
      Corpus = argv[++I];
    } else if (std::strcmp(argv[I], "--item-cycles") == 0 && I + 1 < argc) {
      ItemCycles = static_cast<uint64_t>(std::atoll(argv[++I]));
    } else if (std::strcmp(argv[I], "--warm-items") == 0 && I + 1 < argc) {
      WarmItems = static_cast<unsigned>(std::atoi(argv[++I]));
    } else if (std::strcmp(argv[I], "--min-speedup") == 0 && I + 1 < argc) {
      MinSpeedup = std::atof(argv[++I]);
    } else if (std::strcmp(argv[I], "--cache-dir") == 0 && I + 1 < argc) {
      CacheDir = argv[++I];
    } else if (std::strcmp(argv[I], "--trace-dir") == 0 && I + 1 < argc) {
      TraceDir = argv[++I];
    } else if (std::strcmp(argv[I], "--no-fresh") == 0) {
      RunFresh = false;
    } else if (std::strcmp(argv[I], "--json") == 0) {
      Json = true;
    } else {
      std::fprintf(stderr,
                   "unexpected argument '%s'\n"
                   "usage: rdbt_serve [--spec S]... [--sessions N] "
                   "[--jobs J] [--corpus F] [--item-cycles W] "
                   "[--warm-items K] [--min-speedup X] "
                   "[--cache-dir D] [--trace-dir D] [--no-fresh] "
                   "[--json]\n", argv[I]);
      return 2;
    }
  }
  if (!Sessions)
    Sessions = 1;
  if (Specs.empty()) {
    Specs.push_back("rule:scheduling/libquantum");
    if (Corpus)
      Specs.push_back(std::string("rule:file=") + Corpus + "/libquantum");
  }

  if (ItemCycles)
    std::printf("serving %u work item(s) of %llu cycle(s) per spec on %u "
                "job(s): boot once, warm %u item(s), capture, fork "
                "copy-on-write per item\n\n",
                Sessions, static_cast<unsigned long long>(ItemCycles), Jobs,
                WarmItems);
  else
    std::printf("serving %u whole-workload session(s) per spec on %u "
                "job(s): boot once, capture, fork copy-on-write\n\n",
                Sessions, Jobs);

  std::vector<SpecServe> Serves;
  int Failures = 0;
  for (size_t SpecIdx = 0; SpecIdx < Specs.size(); ++SpecIdx) {
    const std::string &Spec = Specs[SpecIdx];
    SpecServe S;
    if (!serveSpec(Spec, Sessions, Jobs, ItemCycles, WarmItems, RunFresh,
                   CacheDir, TraceDir, S, SpecIdx)) {
      ++Failures;
      continue;
    }
    printServe(S, Sessions);
    if (RunFresh && MinSpeedup > 0 && S.Speedup < MinSpeedup) {
      std::fprintf(stderr, "FAIL: %s speedup %.2fx below the --min-speedup "
                           "%.2fx gate\n", Spec.c_str(), S.Speedup,
                   MinSpeedup);
      ++Failures;
    }
    Serves.push_back(std::move(S));
  }

  if (Json && !writeServeJson(Serves, Sessions, Jobs, ItemCycles, WarmItems))
    ++Failures;

  if (Failures) {
    std::fprintf(stderr, "\n%d serve spec(s) failed\n", Failures);
    return 1;
  }
  std::printf("\nall %zu spec(s) served clean%s\n", Serves.size(),
              RunFresh ? "; every forked final bitwise-identical to its "
                         "fresh twin" : "");
  return 0;
}
